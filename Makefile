GO ?= go

.PHONY: all build test vet lint fmt race bench bench-seed bench-micro bench-kernel timeline explore check

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# rollvet is the repo's own determinism & protocol-invariant analyzer
# (internal/analysis): virtual-clock discipline, seeded randomness, ordered
# map iteration in protocol paths, no goroutines in sim-driven packages, a
# consistent wire.Kind table, plus the dataflow checks — arena pointers
# must not escape their handler (poolescape), //rollvet:hotpath call trees
# must not allocate (hotalloc), storage/wire errors must be consulted
# (stablewrite), and wire.Kind switches must be exhaustive or defaulted
# (kindswitch). `go test ./...` already enforces it for internal/... and
# the root package; this target also sweeps cmd/ and examples/, then pins
# the suppression count against .rollvet-allow-budget.
lint:
	$(GO) run ./cmd/rollvet ./...
	./scripts/suppression_budget.sh

# fmt checks gofmt cleanliness. internal/analysis/testdata is excluded on
# purpose: its fixtures carry deliberately unidiomatic formatting that the
# analyzer's // want annotations depend on (see ROADMAP).
fmt:
	@out=$$(gofmt -l . | grep -v '^internal/analysis/testdata/' || true); \
	if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# The livenet runtime records trace events from many goroutines; the race
# target exercises every package under the race detector. -short skips the
# n=1024 cells (hours under race); the sharded scheduler's window barrier
# is still raced by TestShardedGoldenTraceHash, which has no Short guard.
race:
	$(GO) test -race -short ./...

# bench runs the tiny reference sweep (the same axes as the committed
# BENCH_seed.json) and gates the result against it at threshold 0 — valid
# because the sweep is deterministic byte-for-byte. See DESIGN.md §9.
BENCH_AXES = -seeds 1,2 -n 4 -f 1 -profiles 1995 -styles nonblocking,blocking
bench:
	$(GO) run ./cmd/bench -label ci -out /tmp/BENCH_ci.json $(BENCH_AXES) -quiet
	$(GO) run ./cmd/bench compare BENCH_seed.json /tmp/BENCH_ci.json -threshold 0

# bench-seed regenerates the committed reference snapshot (and the golden
# test fixture) after an intentional behavior change.
bench-seed:
	$(GO) test ./internal/bench -run TestGolden -update
	$(GO) run ./cmd/bench -label seed -out BENCH_seed.json $(BENCH_AXES) -quiet

# timeline regenerates the D11 recovery-timeline exports (DESIGN §11) into
# ./timelines — deterministic byte-for-byte, so diffs mean behavior changed.
timeline:
	$(GO) run ./cmd/experiments -timeline timelines
	$(GO) run ./cmd/timeline timelines/timeline_D11_fbl.json

# explore runs the failure-schedule explorer's bounded-exhaustive pass at
# n=3 for all three protocol families (DESIGN §13): every decision point ×
# every victim, protocol invariants checked on every branch. Exits non-zero
# on any violation, printing a replayable counterexample.
explore:
	$(GO) run ./cmd/explore -out /tmp/explore_report.json

# bench-micro is the Go micro-benchmark suite (trace hot path).
bench-micro:
	$(GO) test -bench=. -benchmem ./internal/trace/

# bench-kernel runs the sim-kernel scheduler microbenchmarks against the
# in-test container/heap baseline, plus the AllocsPerRun regression gates.
bench-kernel:
	$(GO) test ./internal/sim -run 'Allocs' -bench 'BenchmarkKernel|BenchmarkContainerHeap' -benchmem

check: vet lint fmt test race bench
