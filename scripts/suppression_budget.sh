#!/usr/bin/env bash
# Suppression budget: pin the repo-wide count of live //rollvet:allow
# annotations. The count is taken from rollvet's own -json report (the
# "suppressed" total), not from grep, so doc-comment examples and string
# literals mentioning the directive are never miscounted, and stale
# suppressions cannot hide in the number — rollvet reports those as
# findings and fails before this script runs.
#
# Rules enforced:
#   1. .rollvet-allow-budget must equal the live count exactly — shrinking
#      the count requires lowering the budget too (a ratchet).
#   2. When SUPPRESSION_BASE is set (CI passes the PR base or push-before
#      SHA), a budget increase relative to that commit must come with a
#      change to DESIGN.md, whose §8 documents every invariant and its
#      sanctioned escapes.
set -euo pipefail
cd "$(dirname "$0")/.."

budget_file=.rollvet-allow-budget
budget=$(tr -dc '0-9' < "$budget_file")

report=$(go run ./cmd/rollvet -json ./...)
count=$(printf '%s\n' "$report" | sed -n 's/^  "suppressed": \([0-9]*\),*$/\1/p' | head -n1)
if [ -z "$count" ]; then
    echo "suppression_budget: could not parse rollvet -json output" >&2
    exit 1
fi
echo "live //rollvet:allow suppressions: $count (budget: $budget)"

if [ "$count" != "$budget" ]; then
    echo "error: $budget_file records $budget but the tree has $count live suppressions;" >&2
    echo "update $budget_file to $count in the same change (and DESIGN.md §8 if the count grew)" >&2
    exit 1
fi

base="${SUPPRESSION_BASE:-}"
if [ -z "$base" ] || ! git rev-parse -q --verify "$base^{commit}" >/dev/null 2>&1; then
    exit 0
fi
old=$(git show "$base:$budget_file" 2>/dev/null | tr -dc '0-9' || true)
if [ -n "$old" ] && [ "$count" -gt "$old" ]; then
    if git diff --name-only "$base" HEAD -- DESIGN.md | grep -q .; then
        echo "budget grew $old -> $count and DESIGN.md was updated: ok"
    else
        echo "error: suppression budget grew $old -> $count without updating DESIGN.md (§8);" >&2
        echo "document the new sanctioned escape before raising the budget" >&2
        exit 1
    fi
fi
