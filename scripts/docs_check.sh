#!/usr/bin/env bash
# docs_check.sh — docs-consistency gate (CI: docs-consistency job).
#
# The user-facing docs name make targets, CLI flags, and experiment ids.
# Those names rot silently: a renamed flag breaks every copy-pasted
# command in README.md without failing a single test. This script greps
# the docs for such references and fails when one no longer exists in
# the tree.
#
# Checks:
#   1. `make <target>` mentioned in docs  → target exists in Makefile
#   2. `-flag` on a cmd/<tool> invocation → tool declares the flag
#   3. `-only <IDs>` for cmd/experiments  → id is in the registry
#   4. -families/-styles values for cmd/explore → name is in the registry
#
# Exit: 0 clean, 1 findings. Best-effort by design — it only sees
# references it can attribute to a tool on the same (joined) line.
set -euo pipefail
cd "$(dirname "$0")/.."

DOCS="README.md DESIGN.md EXPERIMENTS.md"
fail=0

# Join backslash-continued lines so multi-line fenced commands read as one.
joined() {
  sed -e ':a' -e '/\\$/N; s/\\\n/ /; ta' "$@"
}

# 1. make targets: backtick-quoted (`make x`) or at the start of a
# command line in a fenced block — prose like "make the tables" is not a
# reference.
for t in $( (grep -ohE '`make [a-z][a-z0-9-]*`' $DOCS | tr -d '`';
             grep -ohE '^\s*make [a-z][a-z0-9-]*\s*$' $DOCS) | awk '{print $2}' | sort -u); do
  if ! grep -qE "^$t:" Makefile; then
    echo "docs_check: 'make $t' referenced in docs but Makefile has no target '$t'" >&2
    fail=1
  fi
done

# 2. flags on cmd/<tool> invocations. A flag counts as declared when any
# file under cmd/<tool>/ registers its name with the flag package.
while read -r line; do
  tool=$(grep -oE 'cmd/[a-z]+' <<<"$line" | head -1 | cut -d/ -f2)
  [ -d "cmd/$tool" ] || continue
  for f in $(grep -oE ' -[a-z][a-z0-9-]*' <<<"$line" | sed 's/^ -//' | sort -u); do
    if ! grep -rqE "\.(Bool|Int|Int64|String|Float64|Duration)\(\"$f\"" "cmd/$tool/"; then
      echo "docs_check: flag -$f used with cmd/$tool in docs but cmd/$tool declares no such flag" >&2
      fail=1
    fi
  done
done < <(joined $DOCS | grep -E 'cmd/[a-z]+ .*-[a-z]' | grep -vE '^\s*(//|#)')

# 3. experiment ids passed to cmd/experiments -only.
registry_ids=$(grep -oE '\{"[ED][0-9]+"' cmd/experiments/main.go | tr -d '{"')
for id in $(joined $DOCS | grep -oE '\-only [ED][0-9]+(,[ED][0-9]+)*' | sed 's/-only //' | tr ',' '\n' | sort -u); do
  if ! grep -qx "$id" <<<"$registry_ids"; then
    echo "docs_check: experiment id '$id' referenced in docs but absent from the cmd/experiments registry" >&2
    fail=1
  fi
done

# 4. family and style names passed to cmd/explore. The family registry is
# internal/explore's Family constants; the styles are recovery.Style's
# String() names. "all" is the CLI's wildcard.
family_names=$(grep -oE 'Family = "[a-z]+"' internal/explore/explore.go | grep -oE '"[a-z]+"' | tr -d '"')
style_names=$(grep -oE 'return "[a-z]+"' internal/recovery/recovery.go | grep -oE '"[a-z]+"' | tr -d '"')
for fam in $(joined $DOCS | grep -oE 'cmd/explore .*' | grep -oE '\-families [a-z]+(,[a-z]+)*' | sed 's/-families //' | tr ',' '\n' | sort -u); do
  [ "$fam" = all ] && continue
  if ! grep -qx "$fam" <<<"$family_names"; then
    echo "docs_check: family '$fam' passed to cmd/explore in docs but absent from internal/explore" >&2
    fail=1
  fi
done
for sty in $(joined $DOCS | grep -oE 'cmd/explore .*' | grep -oE '\-styles [a-z]+(,[a-z]+)*' | sed 's/-styles //' | tr ',' '\n' | sort -u); do
  [ "$sty" = all ] && continue
  if ! grep -qx "$sty" <<<"$style_names"; then
    echo "docs_check: style '$sty' passed to cmd/explore in docs but absent from internal/recovery" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "docs_check: ok (targets, flags, experiment ids all resolve)"
