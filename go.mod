module rollrec

go 1.22
